package cachesim

import "srlproc/internal/isa"

// StreamPrefetcher is the Table 1 hardware data prefetcher: it tracks up to
// 16 concurrent unit-stride streams of cache-line misses and, once a stream
// is confirmed, runs a configurable distance ahead of the demand stream.
type StreamPrefetcher struct {
	streams  []stream
	depth    int // lines fetched ahead once confirmed
	issued   uint64
	useful   uint64 // filled lines later hit by demand (tracked by Hierarchy)
	nextSlot int
}

type stream struct {
	valid     bool
	lastLine  uint64 // last demand-miss line address seen
	dir       int64  // +64 or -64 bytes
	confirmed bool
	lru       uint64
}

// NewStreamPrefetcher creates a prefetcher with n stream slots that fetches
// depth lines ahead of a confirmed stream.
func NewStreamPrefetcher(n, depth int) *StreamPrefetcher {
	return &StreamPrefetcher{streams: make([]stream, n), depth: depth}
}

// Issued returns the number of prefetch requests generated.
func (p *StreamPrefetcher) Issued() uint64 { return p.issued }

// OnMiss observes a demand miss to addr and returns the line addresses to
// prefetch (possibly none).
func (p *StreamPrefetcher) OnMiss(addr uint64, tick uint64) []uint64 {
	la := isa.LineAddr(addr)
	const ls = int64(isa.CacheLineSize)

	// Look for a stream this miss extends.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		if int64(la)-int64(s.lastLine) == s.dir {
			s.lastLine = la
			s.confirmed = true
			s.lru = tick
			out := make([]uint64, 0, p.depth)
			for d := 1; d <= p.depth; d++ {
				out = append(out, uint64(int64(la)+s.dir*int64(d)))
			}
			p.issued += uint64(len(out))
			return out
		}
	}
	// Look for a stream to pair with (ascending or descending neighbour)
	// to establish direction.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid || s.confirmed {
			continue
		}
		delta := int64(la) - int64(s.lastLine)
		if delta == ls || delta == -ls {
			s.dir = delta
			s.lastLine = la
			s.confirmed = true
			s.lru = tick
			out := make([]uint64, 0, p.depth)
			for d := 1; d <= p.depth; d++ {
				out = append(out, uint64(int64(la)+s.dir*int64(d)))
			}
			p.issued += uint64(len(out))
			return out
		}
	}
	// Allocate a new (unconfirmed) stream in the LRU slot.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lru < oldest {
			oldest = p.streams[i].lru
			victim = i
		}
	}
	p.streams[victim] = stream{valid: true, lastLine: la, dir: ls, lru: tick}
	return nil
}
