// Package cachesim models the baseline memory hierarchy of Table 1: a
// 32KB 3-cycle L1 data cache, a 1MB 8-cycle unified L2, 64-byte lines,
// 100ns memory, a 16-stream hardware prefetcher, and a file of miss status
// holding registers that bounds memory-level parallelism. It also provides
// the per-checkpoint speculative line state that Section 4.3 describes for
// the "use the data cache for temporary updates" design variant evaluated
// in Section 6.5 (Figure 10).
package cachesim

import (
	"fmt"

	"srlproc/internal/isa"
)

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	ready uint64 // cycle at which the fill completes (0 = long resident)
	// Speculative state for checkpointed store updates (Section 4.3):
	// spec marks a line holding an uncommitted store's data; specCkpt is the
	// checkpoint that owns the speculative version (only one version of a
	// block is allowed). specTemp additionally marks a *temporary* update —
	// an independent store's pre-redo write in the §6.5 "use the data cache
	// for forwarding" variant — which is discarded when the redo begins.
	spec     bool
	specTemp bool
	specCkpt int
}

// Cache is one set-associative, write-back, write-allocate cache level with
// LRU replacement.
type Cache struct {
	name     string
	sets     [][]line // each set ordered MRU-first
	assoc    int
	numSets  int
	latency  uint64
	accesses uint64
	misses   uint64
	wbacks   uint64
}

// NewCache builds a cache of sizeBytes capacity and the given associativity
// and hit latency. sizeBytes/assoc/line must yield a power-of-two set count.
func NewCache(name string, sizeBytes, assoc int, latency uint64) *Cache {
	numSets := sizeBytes / (assoc * isa.CacheLineSize)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cachesim: %s: set count %d not a positive power of two", name, numSets))
	}
	c := &Cache{name: name, assoc: assoc, numSets: numSets, latency: latency}
	c.sets = make([][]line, numSets)
	for i := range c.sets {
		c.sets[i] = make([]line, 0, assoc)
	}
	return c
}

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// Accesses and Misses return raw counts; Writebacks the dirty evictions.
func (c *Cache) Accesses() uint64   { return c.accesses }
func (c *Cache) Misses() uint64     { return c.misses }
func (c *Cache) Writebacks() uint64 { return c.wbacks }

func (c *Cache) setIdx(addr uint64) uint64 {
	return (addr / isa.CacheLineSize) % uint64(c.numSets)
}

// Lookup probes for addr's line. On a hit it refreshes LRU and returns the
// cycle the data is available (max of now+latency and the line's fill
// ready time). It does not allocate.
func (c *Cache) Lookup(cycle, addr uint64) (hit bool, ready uint64) {
	c.accesses++
	si := c.setIdx(addr)
	tag := addr / isa.CacheLineSize / uint64(c.numSets)
	set := c.sets[si]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			l := set[i]
			copy(set[1:i+1], set[:i]) // move to MRU
			set[0] = l
			r := cycle + c.latency
			if l.ready > r {
				r = l.ready
			}
			return true, r
		}
	}
	c.misses++
	return false, 0
}

// Contains reports presence without touching LRU or counters.
func (c *Cache) Contains(addr uint64) bool {
	si := c.setIdx(addr)
	tag := addr / isa.CacheLineSize / uint64(c.numSets)
	for i := range c.sets[si] {
		if c.sets[si][i].valid && c.sets[si][i].tag == tag {
			return true
		}
	}
	return false
}

// Evicted describes a line displaced by Insert.
type Evicted struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Insert fills addr's line (MRU position), evicting LRU if needed.
// readyAt is the cycle the fill data arrives; dirty marks an immediate
// write-allocate store.
func (c *Cache) Insert(addr, readyAt uint64, dirty bool) Evicted {
	si := c.setIdx(addr)
	tag := addr / isa.CacheLineSize / uint64(c.numSets)
	set := c.sets[si]
	// Already present (e.g. racing fills): just update.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = set[i].dirty || dirty
			if set[i].ready < readyAt {
				set[i].ready = readyAt
			}
			return Evicted{}
		}
	}
	nl := line{tag: tag, valid: true, dirty: dirty, ready: readyAt, specCkpt: -1}
	if len(set) < c.assoc {
		c.sets[si] = append(set, line{})
		set = c.sets[si]
		copy(set[1:], set[:len(set)-1])
		set[0] = nl
		return Evicted{}
	}
	victim := set[len(set)-1]
	copy(set[1:], set[:len(set)-1])
	set[0] = nl
	ev := Evicted{Valid: victim.valid, Dirty: victim.dirty}
	if victim.valid {
		ev.Addr = (victim.tag*uint64(c.numSets) + si) * isa.CacheLineSize
		if victim.dirty {
			c.wbacks++
		}
	}
	return ev
}

// MarkDirty sets the dirty bit on addr's line if present.
func (c *Cache) MarkDirty(addr uint64) {
	si := c.setIdx(addr)
	tag := addr / isa.CacheLineSize / uint64(c.numSets)
	for i := range c.sets[si] {
		if c.sets[si][i].valid && c.sets[si][i].tag == tag {
			c.sets[si][i].dirty = true
			return
		}
	}
}

// Invalidate drops addr's line, returning whether it was present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	si := c.setIdx(addr)
	tag := addr / isa.CacheLineSize / uint64(c.numSets)
	set := c.sets[si]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i].valid = false
			return true, d
		}
	}
	return false, false
}

// --- speculative (checkpointed) line state, Section 4.3 ---

// SpecWriteResult describes what a speculative store update had to do.
type SpecWriteResult struct {
	// NeededWriteback is true when the target line was dirty and its
	// pre-update contents had to be written back to the next level first
	// (Section 6.5's added latency).
	NeededWriteback bool
	// Conflict is true when another checkpoint already owns a speculative
	// version of this block; the store must stall (only one version of a
	// given cache block is allowed). OwnerCkpt identifies that checkpoint
	// so the caller can resolve conflicts against checkpoints that have
	// since committed or been squashed.
	Conflict  bool
	OwnerCkpt int
	// OwnerTemp is true when the conflicting speculative version is a
	// temporary (pre-redo) update, which the in-order redo supersedes.
	OwnerTemp bool
	// Present is false when the line is not resident at all (the caller
	// must fetch it first).
	Present bool
}

// SpecWrite applies a speculative store update owned by ckpt to addr's
// line, implementing the one-version rule of Section 4.3. temp marks a
// temporary (pre-redo) update that DiscardSpecTemp will drop.
func (c *Cache) SpecWrite(addr uint64, ckpt int, temp bool) SpecWriteResult {
	si := c.setIdx(addr)
	tag := addr / isa.CacheLineSize / uint64(c.numSets)
	set := c.sets[si]
	for i := range set {
		if !set[i].valid || set[i].tag != tag {
			continue
		}
		if set[i].spec && set[i].specCkpt != ckpt {
			return SpecWriteResult{Present: true, Conflict: true, OwnerCkpt: set[i].specCkpt, OwnerTemp: set[i].specTemp}
		}
		res := SpecWriteResult{Present: true}
		if set[i].dirty && !set[i].spec {
			// Write the committed dirty data back before overwriting it
			// speculatively, so discarding the update cannot lose it.
			res.NeededWriteback = true
			c.wbacks++
			set[i].dirty = false
		}
		set[i].spec = true
		set[i].specTemp = set[i].specTemp || temp
		set[i].specCkpt = ckpt
		return res
	}
	return SpecWriteResult{Present: false}
}

// CommitSpec bulk-clears speculative ownership for checkpoint ckpt, marking
// those blocks committed (and dirty, since they hold store data).
func (c *Cache) CommitSpec(ckpt int) (committed int) {
	for si := range c.sets {
		for i := range c.sets[si] {
			l := &c.sets[si][i]
			if l.valid && l.spec && l.specCkpt == ckpt {
				l.spec = false
				l.specTemp = false
				l.specCkpt = -1
				l.dirty = true
				committed++
			}
		}
	}
	return committed
}

// DiscardSpec bulk-invalidates every speculative line, returning the
// invalidated line addresses (the pre-store architectural data still exists
// at the next level; the caller re-registers it there).
func (c *Cache) DiscardSpec() []uint64 {
	return c.discardSpecIf(func(l *line) bool { return true })
}

// DiscardSpecTemp invalidates only temporary (pre-redo) speculative lines —
// the redo-phase discard of §6.5; the next access to any such block
// re-misses to the next level, the extra misses the paper describes.
func (c *Cache) DiscardSpecTemp() []uint64 {
	return c.discardSpecIf(func(l *line) bool { return l.specTemp })
}

// DiscardSpecFrom invalidates speculative lines owned by checkpoint ids >=
// minCkpt (a checkpoint restart squashing those checkpoints).
func (c *Cache) DiscardSpecFrom(minCkpt int) []uint64 {
	return c.discardSpecIf(func(l *line) bool { return l.specCkpt >= minCkpt })
}

func (c *Cache) discardSpecIf(pred func(*line) bool) []uint64 {
	var addrs []uint64
	for si := range c.sets {
		for i := range c.sets[si] {
			l := &c.sets[si][i]
			if l.valid && l.spec && pred(l) {
				addrs = append(addrs, (l.tag*uint64(c.numSets)+uint64(si))*isa.CacheLineSize)
				l.valid = false
				l.spec = false
				l.specTemp = false
				l.specCkpt = -1
			}
		}
	}
	return addrs
}

// HasTempSpec reports whether addr's line is resident and holds a
// temporary (pre-redo) speculative update — the §6.5 variant's forwarding
// source.
func (c *Cache) HasTempSpec(addr uint64) bool {
	si := c.setIdx(addr)
	tag := addr / isa.CacheLineSize / uint64(c.numSets)
	for i := range c.sets[si] {
		l := &c.sets[si][i]
		if l.valid && l.tag == tag {
			return l.spec && l.specTemp
		}
	}
	return false
}

// SpecLines returns how many lines are currently speculative.
func (c *Cache) SpecLines() int {
	n := 0
	for si := range c.sets {
		for i := range c.sets[si] {
			if c.sets[si][i].valid && c.sets[si][i].spec {
				n++
			}
		}
	}
	return n
}
