package cachesim

import "testing"

func smallHier() *Hierarchy {
	cfg := DefaultConfig()
	cfg.PrefetchOn = false
	return NewHierarchy(cfg)
}

func TestAccessLevels(t *testing.T) {
	h := smallHier()
	r := h.Access(100, 0x1000, false)
	if r.Level != 3 {
		t.Fatalf("cold access level %d", r.Level)
	}
	if r.Done != 100+800+3 {
		t.Fatalf("memory access done %d", r.Done)
	}
	// After the fill time, both levels hit.
	r = h.Access(2000, 0x1000, false)
	if r.Level != 1 || r.Done != 2003 {
		t.Fatalf("warm access level=%d done=%d", r.Level, r.Done)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := smallHier()
	h.Access(0, 0x1000, false)
	// Evict from L1 by filling its set (L1: 32KB/4way/64B = 128 sets;
	// conflicting addresses are 128*64=8192 apart).
	for i := 1; i <= 4; i++ {
		h.Access(1000, uint64(0x1000+i*8192), false)
	}
	r := h.Access(5000, 0x1000, false)
	if r.Level != 2 {
		t.Fatalf("expected L2 hit after L1 eviction, got level %d", r.Level)
	}
}

func TestMSHRMerging(t *testing.T) {
	h := smallHier()
	r1 := h.Access(100, 0x1000, false)
	r2 := h.Access(150, 0x1008, false) // same line, 50 cycles later
	if h.DemandMisses() != 1 {
		t.Fatalf("merged access counted as a new miss (%d)", h.DemandMisses())
	}
	if r2.Done != r1.Done {
		t.Fatalf("merged access fill %d vs %d", r2.Done, r1.Done)
	}
}

func TestMSHRFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchOn = false
	cfg.MSHRs = 2
	h := NewHierarchy(cfg)
	h.Access(100, 0x10000, false)
	h.Access(100, 0x20000, false)
	r := h.Access(100, 0x30000, false)
	if !r.MSHRFull {
		t.Fatal("third concurrent miss admitted with 2 MSHRs")
	}
	if h.MSHRFullEvents() != 1 {
		t.Fatalf("MSHRFullEvents %d", h.MSHRFullEvents())
	}
	// Once the fills complete, new misses are admitted again.
	r = h.Access(2000, 0x30000, false)
	if r.MSHRFull {
		t.Fatal("MSHRs not freed after fill time")
	}
}

func TestWriteAllocatesAndDirties(t *testing.T) {
	h := smallHier()
	h.Access(0, 0x1000, true)
	// L1 holds the line dirty: evicting it must push it to L2 dirty and
	// count a writeback.
	for i := 1; i <= 4; i++ {
		h.Access(1000, uint64(0x1000+i*8192), false)
	}
	if h.L1.Writebacks() != 1 {
		t.Fatalf("L1 writebacks %d", h.L1.Writebacks())
	}
}

func TestSnoopInvalidatesBothLevels(t *testing.T) {
	h := smallHier()
	h.Access(0, 0x1000, false)
	if !h.Snoop(0x1000) {
		t.Fatal("snoop missed a resident line")
	}
	if h.ProbeState(0x1000) == "l1" || h.ProbeState(0x1000) == "l2" {
		t.Fatal("line survived snoop")
	}
}

func TestPseudoInclusiveVictims(t *testing.T) {
	// Clean L1 victims must re-register in L2 so long-L1-resident lines
	// (whose L2 copies age out, since L1 hits don't refresh L2 LRU) never
	// silently fall all the way to memory. Because L1 index bits nest
	// inside L2 index bits, any traffic that could age a line out of its
	// L2 set necessarily evicts it from L1 first — and that eviction
	// re-registers it. Verify the re-registration directly: drop the L2
	// copy, then evict the L1 copy and check it lands back in L2.
	h := smallHier()
	h.Access(0, 0x1000, false) // resident in L1+L2
	h.L2.Invalidate(0x1000)    // L2 copy aged out
	for i := 1; i <= 4; i++ {
		h.Access(2000, uint64(0x1000+i*8192), false) // evict from L1 (4-way)
	}
	if h.L1.Contains(0x1000) {
		t.Fatal("test setup: line still in L1")
	}
	if !h.L2.Contains(0x1000) {
		t.Fatal("clean L1 victim not re-registered in L2")
	}
}

func TestWouldMissToMemory(t *testing.T) {
	h := smallHier()
	if !h.WouldMissToMemory(0, 0x5000) {
		t.Fatal("cold line reported warm")
	}
	h.Access(0, 0x5000, false)
	if h.WouldMissToMemory(100, 0x5000) {
		t.Fatal("pending/resident line reported cold")
	}
	// Evict the line from both cache levels while its completed MSHR entry
	// lingers (the file is garbage-collected lazily): a probe after the
	// fill cycle must not mistake the stale entry for an in-flight miss.
	h.L1.Invalidate(0x5000)
	h.L2.Invalidate(0x5000)
	if !h.WouldMissToMemory(5000, 0x5000) {
		t.Fatal("expired MSHR entry suppressed a true miss")
	}
}

// TestMSHRAdmitsAfterCompletion drives the file to its cap, advances past
// every fill's completion, and requires the next distinct-line miss to be
// admitted: Access must prune completed fills before applying the cap, or
// stale entries reject admissible accesses forever.
func TestMSHRAdmitsAfterCompletion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchOn = false
	cfg.MSHRs = 2
	h := NewHierarchy(cfg)
	h.Access(100, 0x10000, false)
	h.Access(100, 0x20000, false)
	if r := h.Access(100, 0x30000, false); !r.MSHRFull {
		t.Fatal("third concurrent miss admitted with 2 MSHRs")
	}
	// Both fills complete at cycle 900. At 901 the file is logically empty.
	r := h.Access(901, 0x40000, false)
	if r.MSHRFull {
		t.Fatal("miss rejected after all outstanding fills completed")
	}
	if r.Level != 3 || r.Done != 901+800+3 {
		t.Fatalf("admitted miss level=%d done=%d", r.Level, r.Done)
	}
	if got := h.MSHRFullEvents(); got != 1 {
		t.Fatalf("MSHRFullEvents %d, want 1", got)
	}
}

func TestDiscardSpecInto(t *testing.T) {
	h := smallHier()
	h.Access(0, 0x1000, false)
	h.L1.SpecWrite(0x1000, 1, false)
	h.L2.Invalidate(0x1000)
	addrs := h.L1.DiscardSpecFrom(0)
	if n := h.DiscardSpecInto(100, addrs); n != 1 {
		t.Fatalf("discarded %d", n)
	}
	if !h.L2.Contains(0x1000) {
		t.Fatal("discarded spec line not re-registered in L2")
	}
}

func TestPrefetcherCoversStream(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	cycle := uint64(1000)
	base := uint64(0x8000_0000)
	slow, total := 0, 0
	for line := uint64(0); line < 200; line++ {
		for a := uint64(0); a < 8; a++ {
			res := h.Access(cycle, base+line*64+a*8, false)
			if res.MSHRFull {
				cycle += 5
				continue
			}
			total++
			if res.Done > cycle+50 && line > 10 {
				slow++
			}
			cycle += 112
		}
	}
	if slow > total/20 {
		t.Fatalf("stream poorly covered: %d slow of %d", slow, total)
	}
	if h.PrefetchIssued() == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestPrefetcherDescendingStream(t *testing.T) {
	p := NewStreamPrefetcher(4, 2)
	base := uint64(0x9000_0000)
	p.OnMiss(base, 1)
	out := p.OnMiss(base-64, 2) // descending neighbour confirms
	if len(out) != 2 || out[0] != base-128 {
		t.Fatalf("descending prefetch %v", out)
	}
}

func TestPrefetcherSlotReplacement(t *testing.T) {
	p := NewStreamPrefetcher(2, 2)
	p.OnMiss(0x1000, 1)
	p.OnMiss(0x9000, 2)
	p.OnMiss(0x20000, 3) // evicts the LRU unconfirmed slot
	// The first stream's continuation now re-allocates rather than confirms.
	if out := p.OnMiss(0x1040, 4); len(out) != 0 {
		// Acceptable: 0x1040 may pair with a surviving neighbour slot; the
		// contract is merely that nothing panics and slots recycle.
		t.Logf("continuation produced %v", out)
	}
}
