# Development targets. `tier1` is the repo's canonical pass/fail gate;
# `verify` adds vet and the race detector, which matters now that the
# sweep engine's worker pool is the default execution path for every
# experiment. Run both before merging.

.PHONY: tier1 verify lint bench

tier1:
	go build ./... && go test ./...

verify:
	go vet ./...
	go test -race ./...

# Formatting and static checks, kept separate from the test gates so CI
# can report them as a distinct failure.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...

# The sweep-engine comparison: serial vs pooled vs pooled+memoized on the
# Figure 6 matrix at QuickOptions scale.
bench:
	go test -run '^$$' -bench BenchmarkSweepMatrix -benchtime 1x .
