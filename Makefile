# Development targets. `tier1` is the repo's canonical pass/fail gate;
# `verify` adds vet and the race detector, which matters now that the
# sweep engine's worker pool is the default execution path for every
# experiment. Run both before merging.

.PHONY: tier1 verify lint bench bench-json bench-smoke fuzz serve serve-smoke cluster-smoke clean-store paper paper-quick paper-smoke

tier1:
	go build ./... && go test ./...

verify:
	go vet ./...
	go test -race ./...

# Formatting and static checks, kept separate from the test gates so CI
# can report them as a distinct failure.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...

# The sweep-engine comparison: serial vs pooled vs pooled+memoized on the
# Figure 6 matrix at QuickOptions scale.
bench:
	go test -run '^$$' -bench BenchmarkSweepMatrix -benchtime 1x -benchmem .

# Machine-readable perf trajectory: the cycle-loop micro-benchmarks (three
# repetitions, minimum kept) plus the end-to-end sweep matrix, rendered to
# BENCH_core.json by cmd/benchjson. This file is the CI bench gate's
# baseline and the repo's recorded perf history — regenerate and commit it
# when a PR intentionally shifts performance.
BENCHOUT ?= BENCH_core.json
BENCHRAW ?= /tmp/srlproc_bench_raw.txt
bench-json:
	@{ go test -run '^$$' -bench '^BenchmarkSweepMatrix$$/^serial$$' -benchtime 1x -benchmem . && \
	   go test -run '^$$' -bench '^(BenchmarkCycleLoop|BenchmarkReadyHeap|BenchmarkIssueWidth)(/|$$)' \
	       -benchtime 20000x -count 3 -benchmem ./internal/core && \
	   go test -run '^$$' -bench '^BenchmarkCycleLoopSkip(/|$$)' \
	       -benchtime 10x -count 3 -benchmem ./internal/core ; } | tee $(BENCHRAW) | \
	   go run ./cmd/benchjson -o $(BENCHOUT)
	@echo "wrote $(BENCHOUT) (raw text: $(BENCHRAW))"

# One-iteration compile-and-run pass over every benchmark in the repo, so
# `go test ./...` runs that match no benchmarks cannot let them rot.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Run the simulator as a long-lived HTTP service (cmd/srlserved) with the
# persistent result store at STOREDIR, so restarts warm-start from disk.
# SIGTERM or Ctrl-C drains gracefully: in-flight jobs finish (and pending
# store writes flush), then the process exits 0.
SERVE_ADDR ?= :8080
STOREDIR ?= .srlproc-store
serve:
	go run ./cmd/srlserved -addr $(SERVE_ADDR) -store-dir $(STOREDIR)

# Drop the persistent result store. Safe at any time: the store is a pure
# cache of recomputable simulation results, keyed by code stamp — the next
# run simply recomputes and repopulates it.
clean-store:
	rm -rf $(STOREDIR)

# End-to-end service smoke test, mirrored by the CI serve-smoke step:
# start srlserved, run one simulate and one sweep request, check /healthz
# and /metrics, then SIGTERM it and require a clean drain (exit 0).
serve-smoke:
	./scripts/serve_smoke.sh

# Multi-process cluster smoke test, mirrored by the CI cluster-smoke
# step: a coordinator and two workers run a sweep that must come back
# byte-identical to a single-node run — including a leg that SIGKILLs
# one worker mid-sweep and relies on re-dispatch.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Reproduce the paper: execute the experiment grid
# (scripts/paper/experiments.json) into paper_runs/<stamp>/ with validated
# CSVs, summary stats, Markdown/LaTeX tables, SVG plots and a report.md,
# then check repeats byte-compare and headline metrics sit inside
# scripts/paper/expectations.json. `paper-quick` is the CI-smoke scale
# (~30s); `paper` is the full-scale run behind the paper's numbers. Both
# warm-start from (and populate) the persistent store at PAPERSTORE.
PAPERSTORE ?= .srlproc-paper-store
paper:
	go run ./cmd/paperrepro -profile full -check -store-dir $(PAPERSTORE)

paper-quick:
	go run ./cmd/paperrepro -profile quick -check -store-dir $(PAPERSTORE)

# End-to-end pipeline smoke test, mirrored by the CI paper-smoke job: two
# quick-profile runs over one store must both pass -check and produce
# byte-identical csv/ and analysis/ trees.
paper-smoke:
	./scripts/paper_smoke.sh

# Budgeted differential-oracle run (see internal/check): the seeded-bug and
# regression-trace tests, the full-scale oracle sweep over every Figure 2/6
# design point, then FUZZTIME of randomized trace-profile x design-point
# fuzzing. Failing fuzz inputs are auto-saved under
# internal/check/testdata/fuzz/FuzzOracle/ and become permanent regression
# seeds; minimize one with `go run ./cmd/traceconv minimize`.
FUZZTIME ?= 30s
fuzz:
	go test ./internal/check -run 'TestSeededForwardingBugCaught|TestSeededOrderingBugCaught|TestRegressionTraces' -count=1
	SRLPROC_ORACLE_FULL=1 go test ./internal/check -run 'TestFiguresOracleClean|TestOrderingOracleClean' -count=1
	go test ./internal/check -run '^$$' -fuzz FuzzOracle -fuzztime $(FUZZTIME)
