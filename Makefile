# Development targets. `tier1` is the repo's canonical pass/fail gate;
# `verify` adds vet and the race detector, which matters now that the
# sweep engine's worker pool is the default execution path for every
# experiment. Run both before merging.

.PHONY: tier1 verify lint bench fuzz

tier1:
	go build ./... && go test ./...

verify:
	go vet ./...
	go test -race ./...

# Formatting and static checks, kept separate from the test gates so CI
# can report them as a distinct failure.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...

# The sweep-engine comparison: serial vs pooled vs pooled+memoized on the
# Figure 6 matrix at QuickOptions scale.
bench:
	go test -run '^$$' -bench BenchmarkSweepMatrix -benchtime 1x .

# Budgeted differential-oracle run (see internal/check): the seeded-bug and
# regression-trace tests, the full-scale oracle sweep over every Figure 2/6
# design point, then FUZZTIME of randomized trace-profile x design-point
# fuzzing. Failing fuzz inputs are auto-saved under
# internal/check/testdata/fuzz/FuzzOracle/ and become permanent regression
# seeds; minimize one with `go run ./cmd/traceconv minimize`.
FUZZTIME ?= 30s
fuzz:
	go test ./internal/check -run 'TestSeededForwardingBugCaught|TestRegressionTraces' -count=1
	SRLPROC_ORACLE_FULL=1 go test ./internal/check -run TestFiguresOracleClean -count=1
	go test ./internal/check -run '^$$' -fuzz FuzzOracle -fuzztime $(FUZZTIME)
