package srlproc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"srlproc/internal/sweep"
)

// TestPublicAPIRoundTrip drives the library exactly as the README shows.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := DefaultConfig(DesignSRL)
	cfg.WarmupUops = 2_000
	cfg.RunUops = 15_000
	res, err := Run(cfg, SINT2K)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 {
		t.Fatal("non-positive IPC")
	}
	if res.Suite != SINT2K || res.Design != DesignSRL {
		t.Fatal("result identity wrong")
	}
}

func TestAllSuitesExported(t *testing.T) {
	if len(AllSuites()) != 7 {
		t.Fatalf("%d suites exported", len(AllSuites()))
	}
}

func TestAllDesignsRunnable(t *testing.T) {
	for _, d := range []StoreDesign{DesignBaseline, DesignLargeSTQ, DesignHierarchical, DesignSRL} {
		cfg := DefaultConfig(d)
		cfg.WarmupUops = 1_000
		cfg.RunUops = 8_000
		if _, err := Run(cfg, PROD); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig(DesignSRL)
	cfg.RunUops = 0
	if _, err := Run(cfg, WS); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestTablesRender(t *testing.T) {
	if !strings.Contains(RenderTable1(), "checkpoints") &&
		!strings.Contains(RenderTable1(), "checkpoint") &&
		!strings.Contains(RenderTable1(), "Map table") {
		t.Fatal("Table 1 incomplete")
	}
	if !strings.Contains(RenderTable2(), "SERVER") {
		t.Fatal("Table 2 incomplete")
	}
	if !strings.Contains(RunPowerArea(), "reduction") {
		t.Fatal("power report incomplete")
	}
}

func TestExperimentRunnersWired(t *testing.T) {
	o := QuickOptions()
	o.WarmupUops, o.RunUops = 1_000, 6_000
	fig, err := RunFigure10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("figure 10 has %d series", len(fig.Series))
	}
}

func TestRunContextCompletes(t *testing.T) {
	cfg := DefaultConfig(DesignSRL)
	cfg.WarmupUops = 1_000
	cfg.RunUops = 8_000
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := RunContext(ctx, cfg, WEB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Uops < cfg.RunUops {
		t.Fatalf("short run: %d uops", res.Uops)
	}
}

func TestRunContextCancelled(t *testing.T) {
	cfg := DefaultConfig(DesignSRL)
	cfg.WarmupUops = 0
	cfg.RunUops = 50_000_000
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := RunContext(ctx, cfg, WEB); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline not surfaced: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

func TestRunFromSourceContext(t *testing.T) {
	cfg := DefaultConfig(DesignBaseline)
	cfg.WarmupUops = 500
	cfg.RunUops = 4_000
	src := NewSyntheticSource(MM, 7)
	res, err := RunFromSourceContext(context.Background(), cfg, src, MM)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suite != MM {
		t.Fatalf("suite label %v", res.Suite)
	}
}

func TestContextExperimentRunnersWired(t *testing.T) {
	o := QuickOptions()
	o.WarmupUops, o.RunUops = 1_000, 6_000
	o.Workers = 2
	var points atomic.Int64
	o.Progress = func(p Progress) { points.Store(int64(p.Done)) }
	fig, err := RunFigure10Context(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("figure 10 has %d series", len(fig.Series))
	}
	if points.Load() == 0 {
		t.Fatal("progress callback never fired")
	}
	// A cancelled context aborts and surfaces ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunTable3Context(ctx, o); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled experiment error = %v", err)
	}
}

// ExampleRun demonstrates the minimal simulation flow (also serves as the
// godoc example for the package entry point).
func ExampleRun() {
	cfg := DefaultConfig(DesignSRL)
	cfg.WarmupUops = 1_000
	cfg.RunUops = 5_000
	res, err := Run(cfg, PROD)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Design, "on", res.Suite, "committed", res.Uops >= 5_000)
	// Output: SRL on PROD committed true
}

// TestSweepCacheFacade exercises the memo-cache control surface: the
// budget applies and is reported in stats, sweeps populate the cache
// within that budget, and Reset zeroes everything.
func TestSweepCacheFacade(t *testing.T) {
	defer func() {
		SetSweepCacheBudget(sweep.DefaultCacheEntries, sweep.DefaultCacheBytes)
		ResetSweepCache()
	}()
	ResetSweepCache()
	SetSweepCacheBudget(2, 1<<20)
	st := SweepCacheStats()
	if st.MaxEntries != 2 || st.MaxBytes != 1<<20 {
		t.Fatalf("budget not applied: %+v", st)
	}
	o := QuickOptions()
	o.RunUops, o.WarmupUops = 2_000, 500
	if _, err := RunTable3Context(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	st = SweepCacheStats()
	if st.Entries == 0 || st.Entries > 2 {
		t.Fatalf("entries outside budget: %+v", st)
	}
	if st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("7-point sweep under a 2-entry budget should miss and evict: %+v", st)
	}
	ResetSweepCache()
	st = SweepCacheStats()
	if st.Entries != 0 || st.Bytes != 0 || st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Fatalf("Reset left state behind: %+v", st)
	}
}

// TestUnifiedExperimentRunner drives RunExperiment through the facade:
// name parsing, the tagged result, and agreement with the typed shim.
func TestUnifiedExperimentRunner(t *testing.T) {
	id, err := ParseExperimentID("figure10")
	if err != nil || id != Fig10 {
		t.Fatalf("ParseExperimentID: %v %v", id, err)
	}
	o := QuickOptions()
	o.WarmupUops, o.RunUops = 1_000, 6_000
	res, err := RunExperiment(context.Background(), id, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != Fig10 || res.Figure == nil || len(res.Figure.Series) != 2 {
		t.Fatalf("tagged result wrong: %+v", res)
	}
	if len(AllExperiments()) != 10 {
		t.Fatalf("AllExperiments lists %d experiments", len(AllExperiments()))
	}
}

// TestResultStoreFacadeWarmRestart is the library-level warm-restart
// round trip: attach a disk store, run an experiment, simulate a process
// restart (fresh memo cache, re-attached store), and require the repeat
// run to be served entirely from durable state with byte-identical output.
func TestResultStoreFacadeWarmRestart(t *testing.T) {
	dir := t.TempDir()
	defer func() {
		FlushResultStore()
		sweep.Global().AttachStore(nil)
		ResetSweepCache()
	}()
	ResetSweepCache()
	if err := AttachResultStore(dir); err != nil {
		t.Fatal(err)
	}
	o := QuickOptions()
	o.WarmupUops, o.RunUops = 500, 2_500
	r1, err := RunExperiment(context.Background(), Fig10, o)
	if err != nil {
		t.Fatal(err)
	}
	FlushResultStore()
	st, ok := SweepStoreStats()
	if !ok || st.Puts == 0 {
		t.Fatalf("store stats after cold run: ok=%v %+v", ok, st)
	}

	ResetSweepCache() // drop the memo tier: what a process restart does
	if err := AttachResultStore(dir); err != nil {
		t.Fatal(err)
	}
	r2, err := RunExperiment(context.Background(), Fig10, o)
	if err != nil {
		t.Fatal(err)
	}
	if cs := SweepCacheStats(); cs.Misses != 0 || cs.StoreHits == 0 {
		t.Fatalf("warm run simulated fresh points: %+v", cs)
	}
	d1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatal("warm-restart experiment output is not byte-identical")
	}
}
