// Package srlproc's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation section. Each benchmark regenerates
// its artefact at reduced scale and reports the headline quantity as a
// custom metric, so
//
//	go test -bench=. -benchmem
//
// walks the entire evaluation. For publication-scale numbers use
// cmd/experiments (larger run lengths, full text tables).
package srlproc

import (
	"context"
	"testing"

	"srlproc/internal/bench"
	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

func benchOptions() bench.Options {
	return bench.Options{WarmupUops: 5_000, RunUops: 30_000, Seed: 1, Parallel: true}
}

// BenchmarkTable1Config renders the machine configuration (Table 1).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.RenderTable1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Suites renders the benchmark suite table (Table 2).
func BenchmarkTable2Suites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.RenderTable2()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure2StoreQueueSweep regenerates Figure 2 (store queue size
// sweep) and reports the SFP2K speedup of the 1K-entry configuration.
func BenchmarkFigure2StoreQueueSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(last.BySuite[trace.SFP2K], "SFP2K-1K-speedup-%")
	}
}

// BenchmarkFigure6SRLComparison regenerates Figure 6 (SRL vs hierarchical
// vs ideal) and reports the mean SRL speedup across suites.
func BenchmarkFigure6SRLComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, v := range fig.Series[0].BySuite {
			sum += v
		}
		b.ReportMetric(sum/float64(len(fig.Series[0].BySuite)), "mean-SRL-speedup-%")
	}
}

// BenchmarkTable3SRLStats regenerates Table 3 and reports SFP2K's redone
// store percentage.
func BenchmarkTable3SRLStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.RunTable3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.Rows[0].RedoneStoresPct, "SFP2K-redone-%")
	}
}

// BenchmarkFigure7Occupancy regenerates the SRL occupancy distribution and
// reports the fraction of SFP2K's occupied time above 256 entries.
func BenchmarkFigure7Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.BySuite[trace.SFP2K][4], "SFP2K->256-%")
	}
}

// BenchmarkFigure8LCFAblation regenerates Figure 8 and reports how much
// removing the LCF costs SFP2K relative to the full SRL.
func BenchmarkFigure8LCFAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		full := fig.Series[0].BySuite[trace.SFP2K]
		none := fig.Series[2].BySuite[trace.SFP2K]
		b.ReportMetric(full-none, "SFP2K-LCF-benefit-pp")
	}
}

// BenchmarkFigure9LCFSweep regenerates Figure 9 (LCF size and hash).
func BenchmarkFigure9LCFSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		small := fig.Series[3].BySuite[trace.SFP2K] // LCF256 + 3-PAX
		big := fig.Series[4].BySuite[trace.SFP2K]   // LCF2K + 3-PAX
		b.ReportMetric(big-small, "SFP2K-2Kvs256-pp")
	}
}

// BenchmarkFigure10ForwardingDesign regenerates Figure 10 (FC vs data
// cache for temporary updates).
func BenchmarkFigure10ForwardingDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		fc := fig.Series[0].BySuite[trace.SFP2K]
		dc := fig.Series[1].BySuite[trace.SFP2K]
		b.ReportMetric(fc-dc, "SFP2K-FC-benefit-pp")
	}
}

// BenchmarkSection62PowerArea evaluates the analytical power/area model.
func BenchmarkSection62PowerArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.RunPowerArea()) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (committed
// micro-ops per wall second) of the SRL design on SINT2K.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := DefaultConfig(DesignSRL)
	cfg.WarmupUops = 0
	cfg.RunUops = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, SINT2K)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Uops), "uops/op")
	}
}

// BenchmarkSweepMatrix contrasts the sweep engine's execution modes on the
// Figure 6 matrix at QuickOptions scale: fully serial, the bounded worker
// pool, and the pool plus the memoization cache (pre-primed, so iterations
// measure pure cache-hit aggregation). The pooled/serial ratio is the
// worker-pool speedup; pooled+memo shows what recurring configurations
// cost once the process cache is warm.
func BenchmarkSweepMatrix(b *testing.B) {
	modes := []struct {
		name string
		mod  func(*bench.Options)
	}{
		{"serial", func(o *bench.Options) { o.Workers = 1; o.NoCache = true }},
		{"pooled", func(o *bench.Options) { o.Workers = 0; o.NoCache = true }},
		{"pooled+memo", func(o *bench.Options) { o.Workers = 0; o.NoCache = false }},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			o := bench.QuickOptions()
			o.Seed = 77 // keep these points disjoint from other tests' cache entries
			m.mod(&o)
			if !o.NoCache {
				// Prime the cache so the memoized mode measures warm hits.
				if _, err := bench.RunFigure6Context(context.Background(), o); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				fig, err := bench.RunFigure6Context(context.Background(), o)
				if err != nil {
					b.Fatal(err)
				}
				if len(fig.Series) != 3 {
					b.Fatal("unexpected figure shape")
				}
			}
			b.ReportMetric(float64(sweep.Global().Hits()), "cache-hits")
		})
	}
}

// --- ablation benchmarks beyond the paper (DESIGN.md section 6) ---

// BenchmarkLoadBufferOverflowPolicy contrasts the victim-buffer and
// violate-on-overflow policies Section 3 offers.
func BenchmarkLoadBufferOverflowPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vict := DefaultConfig(DesignSRL)
		vict.WarmupUops, vict.RunUops = 5_000, 30_000
		viol := vict
		viol.LoadBufVictim = 0
		viol.LoadBufPolicy = 1 // lsq.OverflowViolate
		rv, err := Run(vict, SFP2K)
		if err != nil {
			b.Fatal(err)
		}
		ro, err := Run(viol, SFP2K)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rv.SpeedupOver(ro), "victim-benefit-%")
	}
}

// BenchmarkWARDelay measures the cost/benefit of the write-after-read order
// tracker delaying SRL drains (the paper asserts it does not hurt).
func BenchmarkWARDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := DefaultConfig(DesignSRL)
		on.WarmupUops, on.RunUops = 5_000, 30_000
		off := on
		off.UseWARTracker = false
		rOn, err := Run(on, SFP2K)
		if err != nil {
			b.Fatal(err)
		}
		rOff, err := Run(off, SFP2K)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rOn.SpeedupOver(rOff), "WAR-cost-%")
	}
}
