// Package srlproc is a Go reproduction of "Scalable Load and Store
// Processing in Latency Tolerant Processors" (Gandhi, Akkary, Rajwar,
// Srinivasan, Lai — ISCA 2005).
//
// It provides a cycle-level timing simulator of a Continual Flow Pipeline
// (CFP) processor built on Checkpoint Processing and Recovery (CPR), with
// four interchangeable store-processing organisations:
//
//   - the 48-entry-store-queue baseline,
//   - large single-level store queues (the "ideal" configuration at 1K),
//   - the hierarchical two-level store queue with a Membership Test Buffer,
//   - the paper's proposal: the Store Redo Log (SRL) with a Loose Check
//     Filter, a Forwarding Cache, indexed forwarding and a set-associative
//     secondary load buffer.
//
// The package also bundles synthetic workload generators standing in for
// the paper's seven benchmark suites, a calibrated analytical CAM/SRAM
// power & area model replacing the paper's SPICE runs, and experiment
// runners that regenerate every table and figure of the evaluation section.
//
// Quick start:
//
//	cfg := srlproc.DefaultConfig(srlproc.DesignSRL)
//	res, err := srlproc.Run(cfg, srlproc.SINT2K)
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f\n", res.IPC())
//
// To regenerate the paper's figures use the functions mirroring
// internal/bench (RunFigure2, RunFigure6, RunTable3, ...), or the
// cmd/experiments binary.
package srlproc

import (
	"io"

	"srlproc/internal/bench"
	"srlproc/internal/core"
	"srlproc/internal/lsq"
	"srlproc/internal/multicore"
	"srlproc/internal/trace"
)

// StoreDesign selects the store-processing organisation.
type StoreDesign = core.StoreDesign

// Store-processing designs.
const (
	DesignBaseline     = core.DesignBaseline
	DesignLargeSTQ     = core.DesignLargeSTQ
	DesignHierarchical = core.DesignHierarchical
	DesignSRL          = core.DesignSRL
	DesignFilteredSTQ  = core.DesignFilteredSTQ
)

// Config parameterises a simulation (see core.DefaultConfig for Table 1).
type Config = core.Config

// Results is a simulation run's output.
type Results = core.Results

// Suite identifies a benchmark suite (Table 2).
type Suite = trace.Suite

// The seven benchmark suites of Table 2.
const (
	SFP2K  = trace.SFP2K
	SINT2K = trace.SINT2K
	WEB    = trace.WEB
	MM     = trace.MM
	PROD   = trace.PROD
	SERVER = trace.SERVER
	WS     = trace.WS
)

// LCF hash functions (Section 6.4).
const (
	HashLAB  = lsq.HashLAB
	Hash3PAX = lsq.Hash3PAX
)

// AllSuites lists every suite in the paper's presentation order.
func AllSuites() []Suite { return trace.AllSuites() }

// DefaultConfig returns the Table 1 machine with the given store design.
func DefaultConfig(d StoreDesign) Config { return core.DefaultConfig(d) }

// Run simulates cfg on the given workload suite and returns the measured
// results.
func Run(cfg Config, suite Suite) (*Results, error) {
	c, err := core.New(cfg, suite)
	if err != nil {
		return nil, err
	}
	return c.Run(), nil
}

// TraceSource supplies micro-ops to the simulator; synthetic generators and
// recorded trace files both implement it.
type TraceSource = trace.Source

// NewSyntheticSource returns the suite's synthetic workload generator as a
// TraceSource (useful for recording trace files).
func NewSyntheticSource(suite Suite, seed uint64) TraceSource {
	return trace.NewGenerator(trace.ProfileFor(suite), seed)
}

// RecordTrace captures n micro-ops from src into w using the repository's
// simple fixed-record trace format; NewTraceReader replays such files.
func RecordTrace(w io.Writer, src TraceSource, n uint64) error {
	return trace.Record(w, src, n)
}

// NewTraceReader opens a recorded trace for replay. The reader loops the
// trace to provide the unbounded stream the simulator expects.
func NewTraceReader(rs io.ReadSeeker) (TraceSource, error) {
	return trace.NewReader(rs)
}

// RunFromSource simulates cfg over an arbitrary micro-op source (e.g. a
// recorded trace). The suite only labels results and sets the ambient
// external-snoop rate.
func RunFromSource(cfg Config, src TraceSource, suite Suite) (*Results, error) {
	c, err := core.NewFromSource(cfg, src, trace.ProfileFor(suite))
	if err != nil {
		return nil, err
	}
	return c.Run(), nil
}

// MulticoreConfig parameterises a lockstep multiprocessor simulation with
// real coherence traffic between cores (see internal/multicore).
type MulticoreConfig = multicore.Config

// MulticoreResults aggregates a multicore run.
type MulticoreResults = multicore.Results

// DefaultMulticoreConfig returns a 4-core system running the given store
// design and workload suite with moderate sharing.
func DefaultMulticoreConfig(d StoreDesign, suite Suite) MulticoreConfig {
	return multicore.DefaultConfig(d, suite)
}

// NewMulticore builds a lockstep multicore system.
func NewMulticore(cfg MulticoreConfig) (*multicore.System, error) {
	return multicore.New(cfg)
}

// Options scales the experiment runners.
type Options = bench.Options

// DefaultOptions sizes experiments for a full reproduction run;
// QuickOptions for fast sanity passes.
func DefaultOptions() Options { return bench.DefaultOptions() }

// QuickOptions returns reduced-scale options.
func QuickOptions() Options { return bench.QuickOptions() }

// Experiment runners — one per table/figure of the paper's evaluation.
var (
	RunFigure2  = bench.RunFigure2
	RunFigure6  = bench.RunFigure6
	RunTable3   = bench.RunTable3
	RunFigure7  = bench.RunFigure7
	RunFigure8  = bench.RunFigure8
	RunFigure9  = bench.RunFigure9
	RunFigure10 = bench.RunFigure10
)

// RenderTable1 and RenderTable2 echo the configuration tables; RunPowerArea
// reproduces the Section 6.2 power/area comparison.
var (
	RenderTable1 = bench.RenderTable1
	RenderTable2 = bench.RenderTable2
	RunPowerArea = bench.RunPowerArea
)
