// Package srlproc is a Go reproduction of "Scalable Load and Store
// Processing in Latency Tolerant Processors" (Gandhi, Akkary, Rajwar,
// Srinivasan, Lai — ISCA 2005).
//
// It provides a cycle-level timing simulator of a Continual Flow Pipeline
// (CFP) processor built on Checkpoint Processing and Recovery (CPR), with
// four interchangeable store-processing organisations:
//
//   - the 48-entry-store-queue baseline,
//   - large single-level store queues (the "ideal" configuration at 1K),
//   - the hierarchical two-level store queue with a Membership Test Buffer,
//   - the paper's proposal: the Store Redo Log (SRL) with a Loose Check
//     Filter, a Forwarding Cache, indexed forwarding and a set-associative
//     secondary load buffer.
//
// The package also bundles synthetic workload generators standing in for
// the paper's seven benchmark suites, a calibrated analytical CAM/SRAM
// power & area model replacing the paper's SPICE runs, and experiment
// runners that regenerate every table and figure of the evaluation section.
//
// Quick start:
//
//	cfg := srlproc.DefaultConfig(srlproc.DesignSRL)
//	res, err := srlproc.RunContext(ctx, cfg, srlproc.SINT2K)
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f\n", res.IPC())
//
// To regenerate the paper's figures use the unified experiment runner:
//
//	res, err := srlproc.RunExperiment(ctx, srlproc.Fig6, srlproc.QuickOptions())
//	if err != nil { ... }
//	fmt.Println(res)
//
// RunExperiment(ctx, id, opts) is the single entry point behind every
// experiment of the evaluation; the per-experiment typed wrappers
// (RunFigure2Context, RunTable3Context, ...) remain as thin shims over it.
// Experiments execute on the internal sweep engine: a bounded worker pool
// with cancellation, panic isolation, progress reporting and
// cross-experiment result memoization, controlled through Options
// (Workers, Progress, NoCache).
//
// Results can persist across processes: AttachResultStore points the
// process-global memo cache at an on-disk, content-addressed result store,
// after which identical experiment runs in a restarted process replay
// entirely from durable state (zero simulations, byte-identical output).
package srlproc

import (
	"context"
	"io"

	"srlproc/internal/bench"
	"srlproc/internal/core"
	"srlproc/internal/lsq"
	"srlproc/internal/multicore"
	"srlproc/internal/obs"
	"srlproc/internal/oracle"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

// StoreDesign selects the store-processing organisation.
type StoreDesign = core.StoreDesign

// Store-processing designs.
const (
	DesignBaseline     = core.DesignBaseline
	DesignLargeSTQ     = core.DesignLargeSTQ
	DesignHierarchical = core.DesignHierarchical
	DesignSRL          = core.DesignSRL
	DesignFilteredSTQ  = core.DesignFilteredSTQ
)

// Config parameterises a simulation (see core.DefaultConfig for Table 1).
type Config = core.Config

// Results is a simulation run's output.
type Results = core.Results

// Divergence is one mismatch between the pipeline and the lockstep
// reference memory model, reported in Results.Divergences when the run was
// executed with Config.Check set. A correct machine produces none; each
// carries the divergence kind, the involved load/store sequence numbers
// and the recent observability event trail.
type Divergence = oracle.Divergence

// Suite identifies a benchmark suite (Table 2).
type Suite = trace.Suite

// The seven benchmark suites of Table 2.
const (
	SFP2K  = trace.SFP2K
	SINT2K = trace.SINT2K
	WEB    = trace.WEB
	MM     = trace.MM
	PROD   = trace.PROD
	SERVER = trace.SERVER
	WS     = trace.WS
)

// LCF hash functions (Section 6.4).
const (
	HashLAB  = lsq.HashLAB
	Hash3PAX = lsq.Hash3PAX
)

// AllSuites lists every suite in the paper's presentation order.
func AllSuites() []Suite { return trace.AllSuites() }

// DefaultConfig returns the Table 1 machine with the given store design.
func DefaultConfig(d StoreDesign) Config { return core.DefaultConfig(d) }

// RunContext simulates cfg on the given workload suite and returns the
// measured results. The context is polled every few thousand simulated
// cycles; once it is cancelled or past its deadline the simulation stops
// and the returned error wraps ctx.Err().
func RunContext(ctx context.Context, cfg Config, suite Suite) (*Results, error) {
	c, err := core.New(cfg, suite)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx)
}

// Run simulates cfg on the given workload suite with context.Background().
//
// Deprecated: use RunContext, which supports cancellation and deadlines.
func Run(cfg Config, suite Suite) (*Results, error) {
	return RunContext(context.Background(), cfg, suite)
}

// TraceSource supplies micro-ops to the simulator; synthetic generators and
// recorded trace files both implement it.
type TraceSource = trace.Source

// NewSyntheticSource returns the suite's synthetic workload generator as a
// TraceSource (useful for recording trace files).
func NewSyntheticSource(suite Suite, seed uint64) TraceSource {
	return trace.NewGenerator(trace.ProfileFor(suite), seed)
}

// RecordTrace captures n micro-ops from src into w using the repository's
// simple fixed-record trace format; NewTraceReader replays such files.
func RecordTrace(w io.Writer, src TraceSource, n uint64) error {
	return trace.Record(w, src, n)
}

// NewTraceReader opens a recorded trace for replay. The reader loops the
// trace to provide the unbounded stream the simulator expects.
func NewTraceReader(rs io.ReadSeeker) (TraceSource, error) {
	return trace.NewReader(rs)
}

// RunFromSourceContext simulates cfg over an arbitrary micro-op source
// (e.g. a recorded trace) with cooperative cancellation, like RunContext.
// The suite only labels results and sets the ambient external-snoop rate.
func RunFromSourceContext(ctx context.Context, cfg Config, src TraceSource, suite Suite) (*Results, error) {
	c, err := core.NewFromSource(cfg, src, trace.ProfileFor(suite))
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx)
}

// RunFromSource simulates cfg over an arbitrary micro-op source with
// context.Background().
//
// Deprecated: use RunFromSourceContext, which supports cancellation and
// deadlines.
func RunFromSource(cfg Config, src TraceSource, suite Suite) (*Results, error) {
	return RunFromSourceContext(context.Background(), cfg, src, suite)
}

// MulticoreConfig parameterises a lockstep multiprocessor simulation with
// real coherence traffic between cores (see internal/multicore).
type MulticoreConfig = multicore.Config

// MulticoreResults aggregates a multicore run.
type MulticoreResults = multicore.Results

// DefaultMulticoreConfig returns a 4-core system running the given store
// design and workload suite with moderate sharing.
func DefaultMulticoreConfig(d StoreDesign, suite Suite) MulticoreConfig {
	return multicore.DefaultConfig(d, suite)
}

// NewMulticore builds a lockstep multicore system.
func NewMulticore(cfg MulticoreConfig) (*multicore.System, error) {
	return multicore.New(cfg)
}

// Options scales the experiment runners and tunes the sweep engine that
// executes their simulation points: Workers bounds the worker pool (0
// defers to the deprecated Parallel switch, 1 is serial, n > 1 caps
// concurrency), Progress observes per-point completion, NoCache disables
// cross-experiment result memoization, and Obs enables per-run
// observability on every point. Options.Validate normalises the
// deprecated Parallel switch into Workers — it is the only place that
// mapping lives.
type Options = bench.Options

// ObsConfig enables run observability: Config.Obs (or Options.Obs) with a
// non-zero SampleEvery records a cycle-window Timeline, and TraceEvents
// records a typed event trace. The zero value disables both; a disabled
// run pays one pointer comparison per cycle and allocates nothing.
type ObsConfig = obs.Config

// DefaultObsConfig returns observability defaults: a 4096-cycle sampling
// window and event tracing enabled.
func DefaultObsConfig() ObsConfig { return obs.DefaultConfig() }

// Timeline is a run's cycle-window time-series: IPC, structure
// occupancies, stall-cause and forwarding-mix deltas per sampling window.
// Found on Results.Timeline when observability is enabled; export with
// WriteCSV, WriteJSONL or MarshalJSON.
type Timeline = obs.Timeline

// TraceWriter is a run's typed pipeline event trace (checkpoints,
// restarts, miss returns, redo drains, violations). Found on
// Results.Trace when tracing is enabled; export with WriteJSONL or, for
// chrome://tracing / Perfetto, WriteChromeTrace.
type TraceWriter = obs.TraceWriter

// Metric identifies one typed hot-path counter; read values with
// Results.Metric and enumerate with AllMetrics.
type Metric = obs.Metric

// AllMetrics lists every typed metric in declaration order.
func AllMetrics() []Metric { return obs.AllMetrics() }

// EventKind is a typed pipeline event recorded by the trace hook; query
// counts with Results.Trace.Count.
type EventKind = obs.EventKind

// The trace event kinds (see obs.EventKind for per-kind Arg semantics).
const (
	EvCheckpointCreate  = obs.EvCheckpointCreate
	EvCheckpointCommit  = obs.EvCheckpointCommit
	EvRestart           = obs.EvRestart
	EvMissReturn        = obs.EvMissReturn
	EvRedoStart         = obs.EvRedoStart
	EvRedoEnd           = obs.EvRedoEnd
	EvMemDepViolation   = obs.EvMemDepViolation
	EvSnoopViolation    = obs.EvSnoopViolation
	EvOverflowViolation = obs.EvOverflowViolation
	EvBranchMispredict  = obs.EvBranchMispredict
)

// SweepReport aggregates one engine sweep: per-point outcomes in input
// order plus pool-level metrics (elapsed, cache hits, worker
// utilization). Experiment runners consume it internally; it is exported
// for callers driving sweep-level tooling.
type SweepReport = sweep.Report

// SweepPointResult is one sweep point's outcome and cost.
type SweepPointResult = sweep.PointResult

// Progress is one snapshot of a running sweep: points done/total, cache
// hits, failures, elapsed wall time and a naive ETA.
type Progress = sweep.Progress

// ProgressFunc receives Progress snapshots; set it on Options.Progress.
// With more than one worker it is called concurrently.
type ProgressFunc = sweep.ProgressFunc

// CacheStats is a snapshot of the sweep memo cache's accounting: hit,
// miss and eviction counters plus the current and maximum entry and byte
// footprint.
type CacheStats = sweep.Stats

// SweepCacheStats returns the process-global memo cache's counters. The
// cache is bounded by default (sweep.DefaultCacheEntries entries,
// sweep.DefaultCacheBytes bytes, LRU eviction); long-lived processes such
// as cmd/srlserved poll these counters for /metrics.
func SweepCacheStats() CacheStats { return sweep.Global().Stats() }

// SetSweepCacheBudget re-bounds the process-global memo cache, evicting
// least-recently-used entries immediately if the new budget is smaller.
// A maxEntries or maxBytes of zero or below disables that bound.
func SetSweepCacheBudget(maxEntries int, maxBytes int64) {
	sweep.Global().SetBudget(maxEntries, maxBytes)
}

// ResetSweepCache drops every memoized sweep result and zeroes the cache
// counters. Safe to call concurrently with running sweeps: in-flight
// computations finish against the old generation and are not re-inserted.
func ResetSweepCache() { sweep.Global().Reset() }

// ResultStoreStats snapshots the persistent result store's contents and
// counters (entries, hydratable entries, hits/misses/puts, quarantined
// files). ok is false when no store is attached.
type ResultStoreStats = store.Stats

// AttachResultStore opens (creating if needed) an on-disk result store
// rooted at dir and installs it as the persistent tier under the
// process-global memo cache. From then on, memo misses fall through to
// the store before simulating and completed results write through
// asynchronously, so a restarted process replays identical experiments
// with zero simulations and byte-identical output.
//
// Store keys include this binary's code-version stamp: a rebuilt binary
// computes under a fresh stamp and never reads another build's results.
// Call FlushResultStore before exiting to guarantee the final results
// reached disk.
func AttachResultStore(dir string) error {
	st, err := store.OpenDisk(dir)
	if err != nil {
		return err
	}
	sweep.Global().AttachStore(st)
	return nil
}

// FlushResultStore blocks until every completed result queued for
// write-through has reached the attached store (no-op when none is
// attached).
func FlushResultStore() { sweep.Global().FlushStore() }

// SweepStoreStats returns the attached persistent store's counters; ok is
// false when AttachResultStore has not been called.
func SweepStoreStats() (st ResultStoreStats, ok bool) {
	return sweep.Global().StoreStats()
}

// DefaultOptions sizes experiments for a full reproduction run;
// QuickOptions for fast sanity passes.
func DefaultOptions() Options { return bench.DefaultOptions() }

// QuickOptions returns reduced-scale options.
func QuickOptions() Options { return bench.QuickOptions() }

// FigureResult is a generic speedup figure: one series per configuration,
// percent speedup over the baseline per suite, plus the raw per-point
// results. Returned by the Figure 2/6/8/9/10 runners.
type FigureResult = bench.FigureResult

// Table3Result holds every suite's SRL statistics (Table 3).
type Table3Result = bench.Table3Result

// Figure7Result is the SRL occupancy distribution (Figure 7).
type Figure7Result = bench.Figure7Result

// EnergyResult compares secondary load/store structure dynamic energy
// attributed from simulated activity (the Energy experiment).
type EnergyResult = bench.EnergyResult

// LatencyResult holds the per-design IPC-vs-memory-latency tolerance
// curves (the Latency experiment).
type LatencyResult = bench.LatencyResult

// ExperimentID names one experiment of the paper's evaluation; it is the
// vocabulary RunExperiment, cmd/experiments and the HTTP service share.
type ExperimentID = bench.ExperimentID

// The experiments, in the evaluation's presentation order.
const (
	Fig2    = bench.Fig2
	Fig6    = bench.Fig6
	Fig7    = bench.Fig7
	Fig8    = bench.Fig8
	Fig9    = bench.Fig9
	Fig10   = bench.Fig10
	Table3  = bench.Table3
	Energy  = bench.Energy
	Latency = bench.Latency
)

// ExperimentResult is RunExperiment's tagged result: ID says which
// experiment ran, exactly one typed field is non-nil, Value returns it
// untyped, and the JSON form is the inner result document itself.
type ExperimentResult = bench.ExperimentResult

// AllExperiments lists every experiment in presentation order.
func AllExperiments() []ExperimentID { return bench.AllExperiments() }

// ParseExperimentID resolves an experiment name ("fig2" ... "table3",
// "energy", "latency", or "figure2"-style long aliases) case-insensitively.
func ParseExperimentID(name string) (ExperimentID, error) {
	return bench.ParseExperimentID(name)
}

// RunExperiment runs one experiment of the paper's evaluation — the
// unified entry point behind every per-experiment wrapper. The Latency
// experiment picks its suite from Options.LatencySuite (zero value SFP2K).
func RunExperiment(ctx context.Context, id ExperimentID, o Options) (*ExperimentResult, error) {
	return bench.RunExperiment(ctx, id, o)
}

// RunFigure2Context reproduces Figure 2: percent speedup of single-level
// store queues of 128..1K entries over the 48-entry baseline, per suite.
//
// Deprecated: use RunExperiment(ctx, Fig2, o) and read the result's
// Figure field — the unified entry point every wrapper now delegates to.
func RunFigure2Context(ctx context.Context, o Options) (*FigureResult, error) {
	return bench.RunFigure2Context(ctx, o)
}

// RunFigure6Context reproduces Figure 6: SRL vs the hierarchical store
// queue vs an ideal (1K-entry, fast) store queue, over the baseline.
//
// Deprecated: use RunExperiment(ctx, Fig6, o) and read the result's
// Figure field — the unified entry point every wrapper now delegates to.
func RunFigure6Context(ctx context.Context, o Options) (*FigureResult, error) {
	return bench.RunFigure6Context(ctx, o)
}

// RunTable3Context reproduces Table 3: SRL statistics per suite.
//
// Deprecated: use RunExperiment(ctx, Table3, o) and read the result's
// Table3 field — the unified entry point every wrapper now delegates to.
func RunTable3Context(ctx context.Context, o Options) (*Table3Result, error) {
	return bench.RunTable3Context(ctx, o)
}

// RunFigure7Context reproduces Figure 7: the SRL occupancy distribution.
//
// Deprecated: use RunExperiment(ctx, Fig7, o) and read the result's
// Figure7 field — the unified entry point every wrapper now delegates to.
func RunFigure7Context(ctx context.Context, o Options) (*Figure7Result, error) {
	return bench.RunFigure7Context(ctx, o)
}

// RunFigure8Context reproduces Figure 8: the LCF and indexed-forwarding
// ablation.
//
// Deprecated: use RunExperiment(ctx, Fig8, o) and read the result's
// Figure field — the unified entry point every wrapper now delegates to.
func RunFigure8Context(ctx context.Context, o Options) (*FigureResult, error) {
	return bench.RunFigure8Context(ctx, o)
}

// RunFigure9Context reproduces Figure 9: the LCF size and hash-function
// sweep.
//
// Deprecated: use RunExperiment(ctx, Fig9, o) and read the result's
// Figure field — the unified entry point every wrapper now delegates to.
func RunFigure9Context(ctx context.Context, o Options) (*FigureResult, error) {
	return bench.RunFigure9Context(ctx, o)
}

// RunFigure10Context reproduces Figure 10: the separate forwarding cache
// vs data-cache temporary updates.
//
// Deprecated: use RunExperiment(ctx, Fig10, o) and read the result's
// Figure field — the unified entry point every wrapper now delegates to.
func RunFigure10Context(ctx context.Context, o Options) (*FigureResult, error) {
	return bench.RunFigure10Context(ctx, o)
}

// RunFigure2 reproduces Figure 2 with context.Background().
//
// Deprecated: use RunExperiment(ctx, Fig2, o), which supports
// cancellation and deadlines.
func RunFigure2(o Options) (*FigureResult, error) { return bench.RunFigure2(o) }

// RunFigure6 reproduces Figure 6 with context.Background().
//
// Deprecated: use RunExperiment(ctx, Fig6, o), which supports
// cancellation and deadlines.
func RunFigure6(o Options) (*FigureResult, error) { return bench.RunFigure6(o) }

// RunTable3 reproduces Table 3 with context.Background().
//
// Deprecated: use RunExperiment(ctx, Table3, o), which supports
// cancellation and deadlines.
func RunTable3(o Options) (*Table3Result, error) { return bench.RunTable3(o) }

// RunFigure7 reproduces Figure 7 with context.Background().
//
// Deprecated: use RunExperiment(ctx, Fig7, o), which supports
// cancellation and deadlines.
func RunFigure7(o Options) (*Figure7Result, error) { return bench.RunFigure7(o) }

// RunFigure8 reproduces Figure 8 with context.Background().
//
// Deprecated: use RunExperiment(ctx, Fig8, o), which supports
// cancellation and deadlines.
func RunFigure8(o Options) (*FigureResult, error) { return bench.RunFigure8(o) }

// RunFigure9 reproduces Figure 9 with context.Background().
//
// Deprecated: use RunExperiment(ctx, Fig9, o), which supports
// cancellation and deadlines.
func RunFigure9(o Options) (*FigureResult, error) { return bench.RunFigure9(o) }

// RunFigure10 reproduces Figure 10 with context.Background().
//
// Deprecated: use RunExperiment(ctx, Fig10, o), which supports
// cancellation and deadlines.
func RunFigure10(o Options) (*FigureResult, error) { return bench.RunFigure10(o) }

// RenderTable1 prints the baseline machine configuration (Table 1). It
// runs no simulation and needs no context.
func RenderTable1() string { return bench.RenderTable1() }

// RenderTable2 prints the benchmark suite table (Table 2).
func RenderTable2() string { return bench.RenderTable2() }

// RunPowerArea reproduces the Section 6.2 power/area comparison from the
// calibrated analytical model (no timing simulation involved).
func RunPowerArea() string { return bench.RunPowerArea() }
