module srlproc

go 1.22
