// Observability demonstrates the run-observability layer: a cycle-window
// timeline sampler and a typed pipeline event trace, both attached to one
// simulation through Config.Obs. It runs the SRL design on SFP2K (the
// suite with the most long-latency misses, so the redo machinery is busy),
// prints a compact occupancy strip chart from the timeline, summarises the
// event trace, and writes the Chrome-trace file that opens directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// A run with a zero Config.Obs pays one pointer comparison per cycle and
// allocates nothing — see BenchmarkCycleLoopObsOff in internal/core.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"srlproc"
)

func main() {
	cfg := srlproc.DefaultConfig(srlproc.DesignSRL)
	cfg.RunUops = 150_000
	cfg.WarmupUops = 30_000
	cfg.Obs = srlproc.DefaultObsConfig() // 4096-cycle windows + event trace

	res, err := srlproc.RunContext(context.Background(), cfg, srlproc.SFP2K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	// The timeline is a ring of per-window samples: IPC, structure
	// occupancies, stall and forwarding deltas. Render SRL occupancy as a
	// strip chart: one glyph per window, deeper shade = fuller SRL.
	fmt.Printf("\nSRL occupancy over time (%d-cycle windows, %d samples):\n",
		res.Timeline.SampleEvery(), res.Timeline.Len())
	shades := []rune(" .:-=+*#%@")
	var strip strings.Builder
	for _, s := range res.Timeline.Samples() {
		frac := float64(s.SRLOcc) / float64(cfg.SRLSize)
		idx := int(frac * float64(len(shades)-1))
		if idx >= len(shades) {
			idx = len(shades) - 1
		}
		strip.WriteRune(shades[idx])
	}
	fmt.Printf("  [%s]\n", strip.String())

	// The trace records typed pipeline events; Count works even past the
	// retention cap.
	fmt.Println("\nEvent trace summary:")
	fmt.Printf("  miss returns:   %d\n", res.Trace.Count(srlproc.EvMissReturn))
	fmt.Printf("  redo drains:    %d\n", res.Trace.Count(srlproc.EvRedoStart))
	fmt.Printf("  restarts:       %d\n", res.Trace.Count(srlproc.EvRestart))

	// Typed metrics replace the old string-keyed hot-path counters.
	fmt.Println("\nNon-zero typed metrics:")
	for _, m := range res.Metrics.NonZero() {
		fmt.Printf("  %-32s %d\n", m, res.Metric(m))
	}

	// Export the Chrome-trace file for chrome://tracing / Perfetto.
	f, err := os.Create("srl_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := res.Trace.WriteChromeTrace(f, res.Timeline); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote srl_trace.json — open it in chrome://tracing or https://ui.perfetto.dev")
}
