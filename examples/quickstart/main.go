// Quickstart: simulate the paper's SRL design on one benchmark suite and
// print the headline statistics, then compare it against the 48-entry
// baseline the paper normalises to.
package main

import (
	"context"
	"fmt"
	"log"

	"srlproc"
)

func main() {
	suite := srlproc.SINT2K

	// The proposed design: Store Redo Log + LCF + forwarding cache.
	srlCfg := srlproc.DefaultConfig(srlproc.DesignSRL)
	srlCfg.RunUops = 150_000
	srlRes, err := srlproc.RunContext(context.Background(), srlCfg, suite)
	if err != nil {
		log.Fatal(err)
	}

	// The baseline every figure in the paper normalises to.
	baseCfg := srlproc.DefaultConfig(srlproc.DesignBaseline)
	baseCfg.RunUops = 150_000
	baseRes, err := srlproc.RunContext(context.Background(), baseCfg, suite)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("suite: %s\n\n", suite)
	fmt.Printf("baseline (48-entry STQ): IPC %.2f\n", baseRes.IPC())
	fmt.Printf("SRL design:              IPC %.2f (%.1f%% speedup)\n\n",
		srlRes.IPC(), srlRes.SpeedupOver(baseRes))
	fmt.Printf("SRL statistics (cf. paper Table 3):\n")
	fmt.Printf("  redone stores:        %.1f%%\n", srlRes.PctRedoneStores())
	fmt.Printf("  miss-dependent uops:  %.1f%%\n", srlRes.PctMissDependentUops())
	fmt.Printf("  load stalls / 10k:    %.1f\n", srlRes.SRLStallsPer10K())
	fmt.Printf("  time SRL occupied:    %.1f%%\n", srlRes.PctTimeSRLOccupied())
	fmt.Printf("\nforwarding sources: L1STQ=%d FC=%d indexed=%d\n",
		srlRes.L1STQForwards, srlRes.FCForwards, srlRes.IndexedForwards)
}
