// Consistency demonstrates the multiprocessor-ordering side of the paper's
// secondary load buffer (Section 3, "Enforcing multiprocessor memory
// ordering"): external store snoops search the set-associative load buffer
// and any hit restarts execution from the hit load's checkpoint.
//
// The SERVER suite (TPC-C-like) carries the highest sharing level; this
// example contrasts it with and without snoop traffic and reports the
// consistency machinery's activity.
package main

import (
	"context"
	"fmt"
	"log"

	"srlproc"
)

func run(cfg srlproc.Config) *srlproc.Results {
	cfg.RunUops = 120_000
	cfg.WarmupUops = 20_000
	res, err := srlproc.RunContext(context.Background(), cfg, srlproc.SERVER)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	with := srlproc.DefaultConfig(srlproc.DesignSRL)
	with.SnoopsEnabled = true
	withRes := run(with)

	without := srlproc.DefaultConfig(srlproc.DesignSRL)
	without.SnoopsEnabled = false
	withoutRes := run(without)

	fmt.Println("SERVER suite (highest sharing), SRL design")
	fmt.Printf("\nwith external snoops:\n")
	fmt.Printf("  IPC %.2f, snoop violations %d, restarts %d\n",
		withRes.IPC(), withRes.SnoopViolations, withRes.Restarts)
	fmt.Printf("  snoops injected: %d\n", withRes.Extra("snoops_injected"))
	fmt.Printf("\nwithout external snoops:\n")
	fmt.Printf("  IPC %.2f, snoop violations %d, restarts %d\n",
		withoutRes.IPC(), withoutRes.SnoopViolations, withoutRes.Restarts)
	slow := (float64(withoutRes.IPC())/float64(withRes.IPC()) - 1) * 100
	fmt.Printf("\ncoherence traffic costs %.1f%% performance on this workload;\n", slow)
	fmt.Println("every violation was detected by a set-indexed lookup of the")
	fmt.Println("secondary load buffer — no load queue CAM was searched.")
}
