// Multicore runs four latency tolerant cores in cycle lockstep with real
// coherence traffic: every globally visible store one core performs is
// snooped by the others' secondary load buffers (Section 3's multiprocessor
// memory ordering). The example sweeps the sharing level and shows
// consistency violations and their cost emerging from genuine cross-core
// stores — no synthetic snoop injection involved.
package main

import (
	"fmt"
	"log"

	"srlproc"
)

func main() {
	for _, shared := range []float64{0, 0.05, 0.20} {
		cfg := srlproc.DefaultMulticoreConfig(srlproc.DesignSRL, srlproc.SERVER)
		cfg.SharedHotFrac = shared
		cfg.Core.WarmupUops = 10_000
		cfg.Core.RunUops = 60_000
		sys, err := srlproc.NewMulticore(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sharing %.0f%%: aggregate IPC %.2f, snoops %d, consistency violations %d\n",
			shared*100, res.AggregateIPC(), res.SnoopsDelivered, res.TotalSnoopViolations())
	}
	fmt.Println("\nEvery violation above was detected by a set-indexed lookup of a")
	fmt.Println("secondary load buffer and recovered by a checkpoint restart —")
	fmt.Println("no fully associative load queue CAM anywhere in the system.")
}
