// Designspace explores the SRL design space beyond the paper's published
// points: it sweeps the loose check filter size and hashing function
// (Figure 9's axes) plus the secondary load buffer's associativity and
// overflow policy on a memory-intensive workload, printing percent speedup
// over the 48-entry baseline for every point.
//
// This is the kind of study a microarchitect would run before committing to
// structure sizes; the library makes each point a one-call simulation.
package main

import (
	"context"
	"fmt"
	"log"

	"srlproc"
	"srlproc/internal/lsq"
)

const (
	runUops = 120_000
	warmup  = 20_000
)

func run(cfg srlproc.Config, suite srlproc.Suite) *srlproc.Results {
	cfg.RunUops = runUops
	cfg.WarmupUops = warmup
	res, err := srlproc.RunContext(context.Background(), cfg, suite)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	suite := srlproc.SFP2K // the suite most sensitive to SRL parameters

	base := run(srlproc.DefaultConfig(srlproc.DesignBaseline), suite)
	fmt.Printf("suite %s, baseline IPC %.2f\n\n", suite, base.IPC())

	fmt.Println("LCF size x hash (speedup over baseline, cf. Figure 9):")
	for _, hash := range []lsq.HashKind{srlproc.HashLAB, srlproc.Hash3PAX} {
		for _, size := range []int{256, 512, 1024, 2048} {
			cfg := srlproc.DefaultConfig(srlproc.DesignSRL)
			cfg.LCFSize = size
			cfg.LCFHash = hash
			r := run(cfg, suite)
			fmt.Printf("  LCF %5d %-6s: %+6.1f%%  (stalls/10k %.1f)\n",
				size, hash, r.SpeedupOver(base), r.SRLStallsPer10K())
		}
	}

	fmt.Println("\nSecondary load buffer associativity x overflow policy:")
	for _, assoc := range []int{4, 8, 16} {
		for _, pol := range []lsq.OverflowPolicy{lsq.OverflowVictim, lsq.OverflowViolate} {
			cfg := srlproc.DefaultConfig(srlproc.DesignSRL)
			cfg.LoadBufAssoc = assoc
			cfg.LoadBufPolicy = pol
			name := "victim "
			if pol == lsq.OverflowViolate {
				name = "violate"
			}
			r := run(cfg, suite)
			fmt.Printf("  %2d-way %s: %+6.1f%%  (overflow violations %d)\n",
				assoc, name, r.SpeedupOver(base), r.OverflowViolations)
		}
	}

	fmt.Println("\nWrite-after-read order tracker ablation (Section 4.3):")
	for _, war := range []bool{true, false} {
		cfg := srlproc.DefaultConfig(srlproc.DesignSRL)
		cfg.UseWARTracker = war
		r := run(cfg, suite)
		fmt.Printf("  WAR tracker %-5v: %+6.1f%%  (memdep violations %d)\n",
			war, r.SpeedupOver(base), r.MemDepViolations)
	}
}
