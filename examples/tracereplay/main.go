// Tracereplay demonstrates the trace record/replay facility: it records a
// synthetic workload into the repository's trace file format, then drives
// the simulator from the recorded file instead of the generator — the same
// path a user would take to run real traces (converted to the 44-byte
// record format documented in internal/trace/source.go) through the SRL
// machine.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"srlproc"
)

func main() {
	// 1. Record 200k micro-ops of the WS suite to an in-memory trace file
	//    (use an os.File for real workflows).
	src := srlproc.NewSyntheticSource(srlproc.WS, 42)
	var traceFile bytes.Buffer
	if err := srlproc.RecordTrace(&traceFile, src, 200_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded trace: %d bytes\n", traceFile.Len())

	// 2. Replay it through the SRL design.
	reader, err := srlproc.NewTraceReader(bytes.NewReader(traceFile.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	cfg := srlproc.DefaultConfig(srlproc.DesignSRL)
	cfg.WarmupUops = 20_000
	cfg.RunUops = 120_000
	res, err := srlproc.RunFromSourceContext(context.Background(), cfg, reader, srlproc.WS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed run: IPC %.2f, redone stores %.1f%%, SRL occupied %.1f%%\n",
		res.IPC(), res.PctRedoneStores(), res.PctTimeSRLOccupied())

	// 3. The replay is bit-identical to running the generator directly.
	direct, err := srlproc.RunContext(context.Background(), func() srlproc.Config {
		c := cfg
		c.Seed = 42
		return c
	}(), srlproc.WS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct run:   IPC %.2f (cycles %d vs %d)\n",
		direct.IPC(), direct.Cycles, res.Cycles)
}
