package srlproc

import (
	"bytes"
	"encoding/json"
	"testing"
)

func detConfig(d StoreDesign) Config {
	cfg := DefaultConfig(d)
	cfg.Seed = 7
	cfg.WarmupUops = 2_000
	cfg.RunUops = 8_000
	return cfg
}

func resultsJSON(t *testing.T, cfg Config, suite Suite) []byte {
	t.Helper()
	res, err := Run(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterministicResults runs the same configuration and seed twice and
// requires byte-identical Results JSON — once plain, once with the
// observability layer enabled, once with the lockstep oracle enabled. The
// simulator carries no hidden global state (wall clock, map iteration
// order, pointer hashing) into its outputs, so identical inputs must give
// identical bytes; any drift here means a reported run is not reproducible
// from its config fingerprint.
func TestDeterministicResults(t *testing.T) {
	variants := []struct {
		name string
		mod  func(*Config)
	}{
		{"plain", func(*Config) {}},
		{"obs", func(c *Config) { c.Obs = DefaultObsConfig() }},
		{"check", func(c *Config) { c.Check = true }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			cfg := detConfig(DesignSRL)
			v.mod(&cfg)
			a := resultsJSON(t, cfg, SINT2K)
			b := resultsJSON(t, cfg, SINT2K)
			if !bytes.Equal(a, b) {
				t.Fatalf("same config+seed produced different Results JSON:\n%s\n---\n%s", a, b)
			}
		})
	}
}

// TestCheckedRunMatchesUnchecked: the oracle observes the pipeline, it must
// not perturb it. A checked run's performance results (cycles, committed
// uops, restarts) must equal the unchecked run's bit for bit.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	for _, d := range []StoreDesign{DesignBaseline, DesignSRL, DesignHierarchical} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			cfg := detConfig(d)
			plain, err := Run(cfg, SINT2K)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Check = true
			checked, err := Run(cfg, SINT2K)
			if err != nil {
				t.Fatal(err)
			}
			if checked.DivergenceCount != 0 {
				t.Fatalf("oracle reported %d divergences: %v", checked.DivergenceCount, checked.Divergences[0])
			}
			if plain.Cycles != checked.Cycles || plain.Uops != checked.Uops || plain.Restarts != checked.Restarts {
				t.Fatalf("oracle perturbed the run: cycles %d/%d uops %d/%d restarts %d/%d",
					plain.Cycles, checked.Cycles, plain.Uops, checked.Uops, plain.Restarts, checked.Restarts)
			}
		})
	}
}
